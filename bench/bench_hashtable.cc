// Storage-engine microbench (tentpole): FlatMap vs std::unordered_map on
// the store's own key/value types, compact Value vs the old fat layout on
// message-style copies, and the handle primitive (find_hinted) vs a full
// probe. Also measures bytes allocated per entry for the memory table in
// docs/perf.md. Results land in BENCH_*.json for the perf trajectory.
#include <cstdlib>
#include <new>
#include <string>
#include <unordered_map>
#include <vector>

#include "bench_util.h"
#include "common/flat_map.h"
#include "common/rng.h"
#include "store/key.h"
#include "store/value.h"

// --- allocation byte counter (memory-per-entry measurement) -------------------
namespace {
thread_local int64_t t_bytes = 0;
thread_local int64_t t_allocs = 0;
}

#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wmismatched-new-delete"
void* operator new(std::size_t n) {
  t_bytes += static_cast<int64_t>(n);
  ++t_allocs;
  if (void* p = std::malloc(n ? n : 1)) return p;
  throw std::bad_alloc();
}
void operator delete(void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
#pragma GCC diagnostic pop

namespace chc {
namespace {

constexpr size_t kEntries = 100'000;
constexpr size_t kLookups = 2'000'000;

StoreKey key_for(uint64_t k) {
  StoreKey key;
  key.vertex = 1;
  key.object = 1;
  key.scope_key = k;
  key.shared = false;
  return key;
}

// The seed's Value layout, reconstructed for the copy-cost comparison: the
// always-present vector + string ride along with every counter.
struct FatValue {
  uint8_t kind = 1;
  int64_t i = 0;
  std::vector<int64_t> list;
  std::string bytes;
};

double secs_since(TimePoint t0) { return to_usec(SteadyClock::now() - t0) / 1e6; }

template <class MapT>
std::pair<double, int64_t> build_and_measure(const char* name) {
  const int64_t bytes0 = t_bytes;
  MapT m;
  m.reserve(kEntries);  // both tables: count live bytes, not growth churn
  const TimePoint t0 = SteadyClock::now();
  for (uint64_t k = 0; k < kEntries; ++k) m[key_for(k)] = Value::of_int(1);
  const double insert_s = secs_since(t0);
  const int64_t bytes_per_entry =
      (t_bytes - bytes0) / static_cast<int64_t>(kEntries);

  SplitMix64 rng(42);
  int64_t sink = 0;
  const TimePoint t1 = SteadyClock::now();
  for (size_t i = 0; i < kLookups; ++i) {
    auto it = m.find(key_for(rng.bounded(kEntries)));
    sink += it->second.as_int();
  }
  const double find_s = secs_since(t1);

  // Churn: erase + reinsert (backward shift vs node free/alloc).
  const TimePoint t2 = SteadyClock::now();
  for (size_t i = 0; i < kEntries; ++i) {
    const uint64_t k = rng.bounded(kEntries);
    m.erase(key_for(k));
    m[key_for(k)] = Value::of_int(2);
  }
  const double churn_s = secs_since(t2);

  std::printf("%-18s %10.0f %12.0f %12.0f %10lld %14lld\n", name,
              static_cast<double>(kEntries) / insert_s,
              static_cast<double>(kLookups) / find_s,
              static_cast<double>(kEntries) / churn_s,
              static_cast<long long>(bytes_per_entry),
              static_cast<long long>(sink % 7));
  return {static_cast<double>(kLookups) / find_s, bytes_per_entry};
}

void table_bench() {
  bench::print_header(
      "storage engine: FlatMap (open-addressing robin-hood) vs "
      "std::unordered_map, StoreKey -> Value",
      "no paper figure; hot-path data-structure bar is >=2x find throughput");
  std::printf("%-18s %10s %12s %12s %10s %14s\n", "table", "insert/s", "find/s",
              "churn/s", "B/entry", "(sink)");
  auto [flat_finds, flat_bpe] =
      build_and_measure<FlatMap<StoreKey, Value>>("flat_map");
  auto [umap_finds, umap_bpe] =
      build_and_measure<std::unordered_map<StoreKey, Value, StoreKeyHash>>(
          "unordered_map");
  std::printf("find speedup: %.2fx, bytes/entry: %lld vs %lld\n",
              flat_finds / umap_finds, static_cast<long long>(flat_bpe),
              static_cast<long long>(umap_bpe));
  bench::emit_bench_json("hashtable_flat_find", flat_finds, 0, 0,
                         "\"bytes_per_entry\": " + std::to_string(flat_bpe));
  bench::emit_bench_json("hashtable_umap_find", umap_finds, 0, 0,
                         "\"bytes_per_entry\": " + std::to_string(umap_bpe));
}

void hinted_bench() {
  bench::print_header(
      "handle primitive: find_hinted (slot hint + 1 key compare) vs full probe",
      "per-flow handles skip key hashing and probing on the steady-state path");
  FlatMap<StoreKey, Value> m;
  for (uint64_t k = 0; k < kEntries; ++k) m[key_for(k)] = Value::of_int(1);

  // One flow's steady state: the same entry touched over and over.
  StoreKey hot = key_for(kEntries / 2);
  uint32_t hint = 0;
  int64_t sink = 0;
  (void)m.find_hinted(hot, &hint);

  const TimePoint t0 = SteadyClock::now();
  for (size_t i = 0; i < kLookups; ++i) {
    // Fresh key each op, as the keyed path must (hash memo cannot carry over).
    StoreKey k = key_for(kEntries / 2);
    sink += m.find(k)->second.as_int();
  }
  const double keyed_s = secs_since(t0);

  const TimePoint t1 = SteadyClock::now();
  for (size_t i = 0; i < kLookups; ++i) {
    sink += m.find_hinted(hot, &hint)->as_int();
  }
  const double hinted_s = secs_since(t1);

  const double keyed_rate = static_cast<double>(kLookups) / keyed_s;
  const double hinted_rate = static_cast<double>(kLookups) / hinted_s;
  std::printf("keyed probe: %12.0f ops/s\nslot hint:   %12.0f ops/s (%.2fx)  "
              "(sink %lld)\n",
              keyed_rate, hinted_rate, hinted_rate / keyed_rate,
              static_cast<long long>(sink % 7));
  bench::emit_bench_json("hashtable_hinted_lookup", hinted_rate, 0, 0);
}

template <class V>
double copy_rate(const V& proto) {
  std::vector<V> ring(64, proto);
  int64_t sink = 0;
  const TimePoint t0 = SteadyClock::now();
  for (size_t i = 0; i < kLookups; ++i) {
    // Message-style hop: copy in, copy out (request arg -> shard -> reply).
    V v = ring[i & 63];
    ring[(i + 1) & 63] = v;
    sink += reinterpret_cast<const char*>(&v)[0];
  }
  const double s = secs_since(t0);
  if (sink == 42) std::printf("!");
  return static_cast<double>(kLookups) / s;
}

void value_copy_bench() {
  bench::print_header(
      "Value copy cost: compact SBO Value (32B) vs seed fat layout "
      "(72B + always-present vector/string members)",
      "every store message carries 1-2 Values; counters must copy allocation-free");
  const double small_new = copy_rate(Value::of_int(7));
  FatValue fat;
  fat.i = 7;
  const double small_old = copy_rate(fat);
  const double list_new = copy_rate(Value::of_list({1, 2, 3}));
  FatValue fat_list;
  fat_list.list = {1, 2, 3};
  const double list_old = copy_rate(fat_list);
  std::printf("%-26s %14s %14s %8s\n", "payload", "compact/s", "fat/s", "speedup");
  std::printf("%-26s %14.0f %14.0f %7.2fx\n", "int counter", small_new, small_old,
              small_new / small_old);
  std::printf("%-26s %14.0f %14.0f %7.2fx\n", "3-elem list (inline)", list_new,
              list_old, list_new / list_old);
  bench::emit_bench_json("value_copy_int_compact", small_new, 0, 0);
  bench::emit_bench_json("value_copy_int_fat", small_old, 0, 0);
}

}  // namespace
}  // namespace chc

int main() {
  chc::table_bench();
  chc::hinted_bench();
  chc::value_copy_bench();
  return 0;
}
