// Figure 13 (R6): packet processing time around an NF failure + recovery,
// at 30% and 50% load, plus root failover cost.
//
// Paper: latency spikes above 4ms while the failover instance replays the
// in-flight log, then returns to normal within 4.5ms (30% load) / 5.6ms
// (50% load). Root failover (read persisted clock + flow allocations)
// takes < 41.2us.
#include "bench_util.h"

using namespace chc;
using namespace chc::bench;

namespace {

void run_load(double load) {
  ChainSpec spec;
  spec.add_vertex("nat", nf_factory("nat"));
  RuntimeConfig cfg = paper_config(Model::kExternalCachedNoAck);
  Runtime rt(std::move(spec), cfg);
  rt.start();
  auto seed = rt.probe_client(0);
  Nat::seed_ports(*seed, 50000, 8192);

  const Trace trace = bench_trace(6000);
  const Duration gap = Micros(static_cast<int64_t>(10.0 / load * 3.0));
  const uint16_t rid = rt.instance(0, 0).runtime_id();

  // Fail mid-stream; the failover container is assumed available
  // immediately (as in the paper) so we recover right away.
  size_t i = 0;
  TimePoint fail_time{};
  for (const Packet& p : trace.packets()) {
    if (i == trace.size() / 2) {
      rt.fail_instance(0, rid);
      fail_time = SteadyClock::now();
      rt.recover_instance(0, rid);
    }
    rt.inject(p);
    spin_for(gap);
    ++i;
  }
  rt.wait_quiescent(std::chrono::seconds(60));

  // Average processing time in 500us windows after the failure.
  auto timeline = rt.sink().timeline();
  std::map<int64_t, std::pair<double, int>> windows;
  double pre_sum = 0;
  int pre_n = 0;
  for (auto& [t, usec] : timeline) {
    const double rel = to_usec(t - fail_time);
    if (rel < 0) {
      pre_sum += usec;
      pre_n++;
      continue;
    }
    auto& [sum, n] = windows[static_cast<int64_t>(rel / 500.0)];
    sum += usec;
    n++;
  }
  const double normal = pre_n ? pre_sum / pre_n : 0;
  std::printf("-- %.0f%% load (pre-failure avg %.1fus)\n", load * 100, normal);
  double back_to_normal_ms = -1;
  int printed = 0;
  for (auto& [w, sn] : windows) {
    const double avg = sn.first / sn.second;
    if (printed < 14) {
      std::printf("   +%5.1fms  avg %9.1f us\n", static_cast<double>(w) * 0.5, avg);
      printed++;
    }
    if (back_to_normal_ms < 0 && avg < 1.3 * normal) {
      back_to_normal_ms = static_cast<double>(w) * 0.5;
    }
  }
  std::printf("   back to normal after ~%.1f ms (paper: 4.5ms @30%%, 5.6ms @50%%)\n",
              back_to_normal_ms < 0 ? 999.0 : back_to_normal_ms);
  rt.shutdown();
}

}  // namespace

int main() {
  print_header("Figure 13 (R6): NF failover — latency around recovery",
               "spike >4ms during replay; normal within 4.5/5.6 ms at 30/50% load");
  for (double load : {0.3, 0.5}) run_load(load);

  // --- root failover ----------------------------------------------------------
  ChainSpec spec;
  spec.add_vertex("ids", nf_factory("ids"));
  RuntimeConfig cfg = paper_config(Model::kExternalCachedNoAck);
  cfg.root.clock_persist_every = 10;
  Runtime rt(std::move(spec), cfg);
  rt.start();
  Packet p;
  p.tuple = {1, 2, 3, 443, IpProto::kTcp};
  p.size_bytes = 100;
  for (int i = 0; i < 100; ++i) rt.inject(p);
  rt.wait_quiescent(std::chrono::seconds(20));
  Histogram root_rec;
  for (int i = 0; i < 20; ++i) root_rec.record(rt.fail_and_recover_root());
  std::printf("\nroot failover: median %.1f us, p95 %.1f us (paper < 41.2us; "
              "one store read + allocation lookup)\n",
              root_rec.median(), root_rec.percentile(95));
  rt.shutdown();
  return 0;
}
