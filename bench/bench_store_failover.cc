// Replicated-shard overhead + failover window (docs/architecture.md §8).
// Two measurements feed BENCH_store_failover.json:
//
//   1. replication-lag overhead: blocking-op throughput with primaries
//      streaming every applied mutation to their backups before ACKing,
//      vs. the same store unreplicated. The forward is one extra ring
//      enqueue on the primary's worker, so the target is >= 0.85x.
//   2. failover window: crash a primary, let failover_shard() promote its
//      backup and re-point the table; the store's histogram records usec
//      from fence to re-routed table (the re-seed of a fresh backup runs
//      after and blocks nobody). Ping-ponging primary <-> promoted backup
//      exercises the re-seeded pair every round.
#include <algorithm>
#include <atomic>
#include <mutex>
#include <thread>
#include <vector>

#include "bench_util.h"
#include "store/datastore.h"

namespace chc {
namespace {

std::vector<StoreKey> make_keys(size_t n) {
  std::vector<StoreKey> keys;
  keys.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    StoreKey k;
    k.vertex = 1;
    k.object = 1;
    k.scope_key = i * 2654435761u + 7;
    k.shared = true;
    k.hash();  // memoize
    keys.push_back(k);
  }
  return keys;
}

struct DriveResult {
  double ops_per_sec = 0;
  Histogram lat;
};

// Blocking incrs round-robin over the keys for `secs`: every op is one
// full round trip. Runs `nthreads` client loops so the shards stay
// saturated — a single serial client measures scheduler ping-pong
// latency, not capacity, and the replication gate is about throughput.
DriveResult drive(DataStore& store, const std::vector<StoreKey>& keys,
                  double secs, int nthreads = 1) {
  DriveResult out;
  std::mutex merge_mu;
  std::atomic<size_t> total_ops{0};
  const TimePoint t0 = SteadyClock::now();
  const TimePoint until = t0 + std::chrono::duration_cast<Duration>(
                                   std::chrono::duration<double>(secs));
  auto loop = [&](int tid) {
    ReplyLinkPtr reply = std::make_shared<ReplyLink>();
    Histogram lat;
    uint64_t seq = 0;
    size_t ki = static_cast<size_t>(tid) * 131;  // decorrelate key walks
    size_t ops = 0;
    while (SteadyClock::now() < until) {
      Request req;
      req.op = OpType::kIncr;
      req.key = keys[ki++ % keys.size()];
      req.arg = Value::of_int(1);
      req.blocking = true;
      req.reply_to = reply;
      req.req_id = ++seq;
      req.route_epoch = store.router().epoch();
      const TimePoint s0 = SteadyClock::now();
      store.submit(req);
      for (;;) {
        auto r = reply->recv(std::chrono::milliseconds(200));
        if (!r || r->req_id != req.req_id) continue;
        if (r->status == Status::kWrongShard) {
          store.submit(req);
          continue;
        }
        break;
      }
      lat.record(to_usec(SteadyClock::now() - s0));
      ops++;
    }
    total_ops.fetch_add(ops);
    std::lock_guard lk(merge_mu);
    out.lat.merge(lat);
  };
  std::vector<std::thread> threads;
  for (int t = 0; t < nthreads; ++t) threads.emplace_back(loop, t);
  for (auto& th : threads) th.join();
  out.ops_per_sec = static_cast<double>(total_ops.load()) /
                    to_usec(SteadyClock::now() - t0) * 1e6;
  return out;
}

DriveResult run_throughput(bool replicated, const std::vector<StoreKey>& keys) {
  DataStoreConfig cfg;
  // One shard: the overhead under measurement is per-pair (primary vs
  // primary+backup), and every extra worker on a small host adds
  // scheduler noise to both sides without adding signal.
  cfg.num_shards = 1;
  cfg.replica.enabled = replicated;
  DataStore store(cfg);
  store.start();
  drive(store, keys, 0.1, 2);  // warm-up: entries + caches populated
  DriveResult r = drive(store, keys, 0.5, 2);
  store.stop();
  return r;
}

}  // namespace
}  // namespace chc

int main() {
  using namespace chc;
  bench::print_header(
      "Replicated store shards: replication overhead + failover window",
      "availability mechanism beyond the paper's checkpoint+replay (§5.4); "
      "no paper number — gate is replicated >= 0.85x unreplicated");

  const std::vector<StoreKey> keys = make_keys(512);

  // Interleaved A/B trials, ratio of medians: shared hosts drift by 2x
  // between windows, so a single back-to-back pair can land the two modes
  // on opposite sides of a load spike. Alternating the modes samples the
  // same noise distribution for both; the median per mode then discards
  // the outlier windows entirely.
  constexpr int kTrials = 5;
  std::vector<double> plain_ops, repl_ops;
  DriveResult plain, repl;  // last trial's, for the latency table
  for (int t = 0; t < kTrials; ++t) {
    plain = run_throughput(/*replicated=*/false, keys);
    repl = run_throughput(/*replicated=*/true, keys);
    plain_ops.push_back(plain.ops_per_sec);
    repl_ops.push_back(repl.ops_per_sec);
    std::printf("trial %d: unreplicated %.0f ops/s, replicated %.0f ops/s "
                "(%.3fx)\n",
                t, plain.ops_per_sec, repl.ops_per_sec,
                plain.ops_per_sec > 0 ? repl.ops_per_sec / plain.ops_per_sec
                                      : 0);
  }
  std::sort(plain_ops.begin(), plain_ops.end());
  std::sort(repl_ops.begin(), repl_ops.end());
  const double plain_med = plain_ops[plain_ops.size() / 2];
  const double repl_med = repl_ops[repl_ops.size() / 2];
  const double ratio = plain_med > 0 ? repl_med / plain_med : 0;
  std::printf("\n%-14s %12s %10s %10s\n", "mode", "ops/s", "p50 us", "p99 us");
  std::printf("%-14s %12.0f %10.2f %10.2f\n", "unreplicated", plain_med,
              plain.lat.percentile(50), plain.lat.percentile(99));
  std::printf("%-14s %12.0f %10.2f %10.2f\n", "replicated", repl_med,
              repl.lat.percentile(50), repl.lat.percentile(99));
  std::printf("replicated/unreplicated: %.3fx, medians over %d trials "
              "(gate: >= 0.85x)\n",
              ratio, kTrials);

  // Failover window: seed a real population, then ping-pong crashes
  // between the pair so every round promotes and re-seeds.
  DataStoreConfig cfg;
  cfg.num_shards = 2;
  cfg.replica.enabled = true;
  DataStore store(cfg);
  store.start();
  drive(store, keys, 0.2);  // resident state for the re-seed stream

  int primary = 0;
  size_t failovers = 0;
  for (int round = 0; round < 20; ++round) {
    const int backup = store.backup_of(primary);
    if (backup < 0) break;
    store.crash_shard(primary);
    if (!store.failover_shard(primary)) break;
    failovers++;
    primary = backup;  // the promoted shard is next round's victim
  }
  const HistSnapshot fo = store.failover_hist();
  store.stop();
  std::printf("\nfailover window (fence -> re-routed table), %zu failovers: "
              "p50=%.0fus p99=%.0fus max=%.0fus (view %llu)\n",
              failovers, fo.percentile(50), fo.percentile(99), fo.max(),
              static_cast<unsigned long long>(store.view()));

  char extra[256];
  std::snprintf(extra, sizeof(extra),
                "\"repl_ratio\": %.3f, \"unreplicated_ops_per_sec\": %.1f, "
                "\"failovers\": %zu, \"failover_max_usec\": %.1f",
                ratio, plain_med, failovers, fo.max());
  bench::emit_bench_json("store_failover", repl_med, fo.percentile(50),
                         fo.percentile(99), extra);
  return ratio >= 0.85 && failovers == 20 ? 0 : 1;
}
