// Figure 11 (R3): strongly-consistent shared-state updates across two NAT
// instances — CHC vs an OpenNF-style controller.
//
// CHC: instances fire offloaded operations at the store, which serializes
// them; the NF never waits (median ~1.8us in the paper). OpenNF: every
// update travels to the controller, is relayed to all instances, and the
// packet is released only after every instance ACKs (median ~166us).
#include "baseline/opennf.h"
#include "bench_util.h"

using namespace chc;
using namespace chc::bench;

int main() {
  print_header("Figure 11 (R3): strongly consistent shared state, CDF",
               "CHC median 1.8us vs OpenNF 0.166ms — 99% lower");

  constexpr int kOps = 2000;

  // --- CHC -------------------------------------------------------------------
  DataStoreConfig scfg;
  scfg.num_shards = 2;
  scfg.link.one_way_delay = kOneWay;
  DataStore store(scfg);
  store.start();
  ClientConfig cc;
  cc.vertex = 1;
  cc.instance = 1;
  cc.caching = true;
  cc.wait_acks = false;  // model #3: serialization happens at the store
  cc.reply_link.one_way_delay = kOneWay;
  StoreClient c1(&store, cc);
  cc.instance = 2;
  StoreClient c2(&store, cc);
  for (StoreClient* c : {&c1, &c2}) {
    c->register_object({1, Scope::kGlobal, true,
                        AccessPattern::kWriteMostlyReadRarely, "shared"});
  }
  Histogram chc;
  std::thread peer([&] {
    for (int i = 0; i < kOps; ++i) {
      c2.set_current_clock(static_cast<LogicalClock>(500'000 + i));
      c2.incr(1, FiveTuple{}, 1);
      c2.poll();
    }
  });
  for (int i = 0; i < kOps; ++i) {
    c1.set_current_clock(static_cast<LogicalClock>(i + 1));
    const TimePoint t0 = SteadyClock::now();
    c1.incr(1, FiveTuple{}, 1);
    chc.record(to_usec(SteadyClock::now() - t0));
    c1.poll();
  }
  peer.join();

  // --- OpenNF ------------------------------------------------------------------
  OpenNfConfig ocfg;
  ocfg.num_instances = 2;
  ocfg.hop.one_way_delay = kOneWay;
  OpenNfController ctrl(ocfg);
  ctrl.start();
  Histogram opennf;
  for (int i = 0; i < kOps; ++i) {
    opennf.record(ctrl.shared_update(1, 1));
  }
  ctrl.stop();

  std::printf("%-10s %10s %10s\n", "", "CHC", "OpenNF");
  for (double p : {5.0, 25.0, 50.0, 75.0, 95.0}) {
    std::printf("p%-9.0f %10.2f %10.2f\n", p, chc.percentile(p),
                opennf.percentile(p));
  }
  std::printf("median reduction: %.1f%% (paper: 99%%)\n",
              100.0 * (1.0 - chc.median() / opennf.median()));

  std::printf("\nCDF (usec, cumulative fraction):\n");
  auto print_cdf = [](const char* name, const Histogram& h) {
    std::printf("%s:", name);
    for (auto& [v, f] : h.cdf(8)) std::printf(" (%.1f,%.2f)", v, f);
    std::printf("\n");
  };
  print_cdf("CHC   ", chc);
  print_cdf("OpenNF", opennf);
  return 0;
}
