// Figure 8: per-packet processing-time percentiles (5/25/50/75/95) for the
// four NFs under the four state-management models:
//   T        traditional NF, state local
//   EO       externalized state, every op waits a store round trip
//   EO+C     + caching per the Table 1 strategy matrix
//   EO+C+NA  + no ACK waits on non-blocking ops
//
// Paper shape: T medians ~2.1-2.3us for NAT/LB; EO adds ~RTT x ops/pkt
// (NAT: 3 round trips); EO+C removes the cached reads; EO+C+NA lands within
// +0.02..0.54us of T. Detectors barely move (no per-packet state).
#include "bench_util.h"

using namespace chc;
using namespace chc::bench;

namespace {

Histogram run_model(const std::string& nf, Model model, const Trace& trace) {
  ChainSpec spec;
  spec.add_vertex(nf, nf_factory(nf));
  Runtime rt(std::move(spec), paper_config(model));
  register_custom_ops(rt.store());
  rt.start();
  if (nf == "nat") {
    auto seed = rt.probe_client(0);
    Nat::seed_ports(*seed, 50000, 4096);
  }
  rt.run_trace(trace);
  rt.wait_quiescent(std::chrono::seconds(20));
  Histogram h = rt.instance(0, 0).proc_time();
  rt.shutdown();
  return h;
}

}  // namespace

int main() {
  print_header("Figure 8: per-packet processing time (usec) by model",
               "NAT T=2.07 EO=+190.7 EO+C=-112.0 EO+C+NA=2.61 | LB T=2.25 "
               "EO=+109.9 EO+C=-55.9 EO+C+NA=2.27 | detectors ~unchanged");

  const Trace trace = bench_trace(4000);
  const char* nfs[] = {"nat", "portscan", "trojan", "lb"};
  const Model models[] = {Model::kTraditional, Model::kExternal,
                          Model::kExternalCached, Model::kExternalCachedNoAck};

  std::printf("%-10s %-9s %8s %8s %8s %8s %8s\n", "nf", "model", "p5", "p25", "p50",
              "p75", "p95");
  for (const char* nf : nfs) {
    double t_median = 0;
    for (Model m : models) {
      Histogram h = run_model(nf, m, trace);
      if (m == Model::kTraditional) t_median = h.median();
      std::printf("%-10s %-9s %8.2f %8.2f %8.2f %8.2f %8.2f", nf, model_name(m),
                  h.percentile(5), h.percentile(25), h.percentile(50),
                  h.percentile(75), h.percentile(95));
      if (m != Model::kTraditional) {
        std::printf("   (median vs T: %+0.2fus)", h.median() - t_median);
      }
      std::printf("\n");
    }
  }
  return 0;
}
