// Shared plumbing for the paper-reproduction benches. Every bench prints
// the paper's reported numbers next to ours; absolute values differ (their
// testbed is CloudLab + 10G NICs, ours is a simulated network with a 28us
// store RTT), but the shapes — who wins, by what factor, where knees sit —
// are the reproduction target.
#pragma once

#include <cstdio>
#include <string>

#include "common/histogram.h"
#include "core/runtime.h"
#include "nf/custom_ops.h"
#include "nf/load_balancer.h"
#include "nf/nat.h"
#include "nf/portscan.h"
#include "nf/simple_nfs.h"
#include "nf/trojan.h"
#include "trace/trace.h"

namespace chc::bench {

inline constexpr auto kOneWay = Micros(14);  // store RTT ~= 28us

// Runtime config with the simulated-network delays the benches assume.
inline RuntimeConfig paper_config(Model m) {
  RuntimeConfig cfg;
  cfg.model = m;
  cfg.store.num_shards = 2;
  cfg.store.link.one_way_delay = kOneWay;
  cfg.root.clock_persist_every = 0;  // clock-persistence cost measured in
                                     // bench_meta_clock, not everywhere
  cfg.root_one_way = kOneWay;
  return cfg;
}

// Reply path must carry the same delay as the request path.
inline RuntimeConfig with_reply_delay(RuntimeConfig cfg) {
  // ClientConfig.reply_link is derived from store.link inside the runtime.
  return cfg;
}

// Zero-delay variant for logic-focused benches.
inline RuntimeConfig fast_config(Model m) {
  RuntimeConfig cfg;
  cfg.model = m;
  cfg.store.num_shards = 2;
  cfg.root.clock_persist_every = 0;
  cfg.root_one_way = Duration::zero();
  return cfg;
}

inline void print_header(const char* title, const char* paper_line) {
  std::printf("\n================================================================\n");
  std::printf("%s\n", title);
  std::printf("paper: %s\n", paper_line);
  std::printf("================================================================\n");
}

inline double gbps(size_t bytes, double seconds) {
  return seconds <= 0 ? 0 : static_cast<double>(bytes) * 8.0 / seconds / 1e9;
}

// Machine-readable result drop: writes BENCH_<name>.json into the working
// directory so CI can collect the perf trajectory across PRs. One file per
// named measurement; ops/sec and latency percentiles are the common schema,
// `extra` appends pre-rendered JSON fields (e.g. "\"gbps\": 9.4").
inline void emit_bench_json(const std::string& name, double ops_per_sec,
                            double p50_usec, double p99_usec,
                            const std::string& extra = "") {
  const std::string path = "BENCH_" + name + ".json";
  FILE* f = std::fopen(path.c_str(), "w");
  if (!f) {
    std::fprintf(stderr, "emit_bench_json: cannot write %s\n", path.c_str());
    return;
  }
  std::fprintf(f,
               "{\n  \"name\": \"%s\",\n  \"ops_per_sec\": %.1f,\n"
               "  \"p50_usec\": %.3f,\n  \"p99_usec\": %.3f",
               name.c_str(), ops_per_sec, p50_usec, p99_usec);
  if (!extra.empty()) std::fprintf(f, ",\n  %s", extra.c_str());
  std::fprintf(f, "\n}\n");
  std::fclose(f);
  std::printf("[bench-json] %s: ops/s=%.0f p50=%.2fus p99=%.2fus\n", path.c_str(),
              ops_per_sec, p50_usec, p99_usec);
}

// Per-phase latency accounting shared by the elasticity benches
// (bench_nf_scaling, bench_store_scaling, bench_autoscale). Each bench used
// to hand-roll the same percentile slicing + row printing; one copy lives
// here now. The series is (timestamp usec since run start, latency usec).
struct PhaseStats {
  Histogram hist;
  double per_sec = 0;  // events whose timestamp fell inside the phase
};

// Adapt a sink-style (TimePoint, latency usec) timeline to the phase_of
// series shape: timestamps become usec offsets from t0.
inline std::vector<std::pair<double, double>> as_series(
    const std::vector<std::pair<TimePoint, double>>& timeline, TimePoint t0) {
  std::vector<std::pair<double, double>> out;
  out.reserve(timeline.size());
  for (const auto& [at, usec] : timeline) {
    out.emplace_back(to_usec(at - t0), usec);
  }
  return out;
}

inline PhaseStats phase_of(const std::vector<std::pair<double, double>>& series,
                           double from_us, double to_us) {
  PhaseStats ps;
  for (const auto& [t_us, lat_us] : series) {
    if (t_us >= from_us && t_us < to_us) ps.hist.record(lat_us);
  }
  const double secs = (to_us - from_us) / 1e6;
  ps.per_sec = secs > 0 ? static_cast<double>(ps.hist.count()) / secs : 0;
  return ps;
}

inline void print_phase_header(const char* rate_unit) {
  std::printf("\n%-8s %12s %10s %10s %10s %10s\n", "phase", rate_unit, "p50 us",
              "p99 us", "max us", "n");
}

inline void print_phase_row(const char* name, const PhaseStats& ps) {
  std::printf("%-8s %12.0f %10.2f %10.2f %10.2f %10zu\n", name, ps.per_sec,
              ps.hist.percentile(50), ps.hist.percentile(99),
              ps.hist.percentile(100), ps.hist.count());
}

// The migration-blip acceptance ratio: p99 during / p99 steady (0 when the
// steady phase saw nothing).
inline double p99_over(const PhaseStats& during, const PhaseStats& steady) {
  const double base = steady.hist.percentile(99);
  return base > 0 ? during.hist.percentile(99) / base : 0;
}

// The four NFs of paper §6/Table 4, by name.
inline NfFactory nf_factory(const std::string& name) {
  if (name == "nat") return [] { return std::make_unique<Nat>(); };
  if (name == "portscan") return [] { return std::make_unique<PortscanDetector>(); };
  if (name == "trojan") return [] { return std::make_unique<TrojanDetector>(); };
  if (name == "lb") return [] { return std::make_unique<LoadBalancer>(8); };
  return [] { return std::make_unique<CountingIds>(); };
}

// A Trace2-shaped workload with handshakes, scans, and app events so every
// NF has something to chew on.
inline Trace bench_trace(size_t packets, uint64_t seed = 7) {
  TraceConfig tc;
  tc.seed = seed;
  tc.num_packets = packets;
  tc.num_connections = std::max<size_t>(20, packets / 32);
  tc.median_packet_size = 1434;
  tc.scan_fraction = 0.05;
  tc.trojan_signatures = {{0x0a0000f1, 0.4}, {0x0a0000f2, 0.7}};
  return generate_trace(tc);
}

}  // namespace chc::bench
