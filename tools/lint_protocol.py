#!/usr/bin/env python3
"""Project-specific concurrency-protocol linter (docs/architecture.md §9).

Clang's -Wthread-safety proves lock/field discipline; these are the repo's
own protocol rules the compiler cannot see:

  R1 bare-wait      Every blocking condition_variable wait must be bounded:
                    wait_for / wait_until (all in-tree waits also carry a
                    predicate). A bare .wait() can wedge a consumer forever
                    behind a dead producer.
  R2 raw-mutex      No raw std::mutex outside common/thread_annotations.h —
                    locking goes through chc::Mutex so the capability
                    attributes apply. Every Mutex member must be referenced
                    by at least one GUARDED_BY / PT_GUARDED_BY / REQUIRES /
                    EXCLUDES / ACQUIRE / RELEASE / RETURN_CAPABILITY in the
                    same file, or carry a `// mutex-ok: <why>` waiver.
  R3 nodiscard      `Status` and `BackendStatus` stay [[nodiscard]] so a
                    silently dropped failure is a compile error, not a lost
                    ACK hiding in a test.
  R4 relaxed-load   No memory_order_relaxed load feeding a control-flow
                    decision (if/while/for condition) outside
                    common/metrics.* without a `// relaxed-ok: <why>`
                    waiver in the preceding lines.
  R5 locked-suffix  A function named *_locked() documents "caller holds the
                    lock"; its declaration must say so to the analyzer with
                    REQUIRES(...).
  R6 tsa-waiver     NO_THREAD_SAFETY_ANALYSIS needs a justifying comment at
                    the use site.
  R7 registry       Every file granted any waiver (mutex-ok, relaxed-ok,
                    NO_THREAD_SAFETY_ANALYSIS) must be listed in
                    docs/static_analysis.md so the waiver set cannot grow
                    silently.

Usage:
  tools/lint_protocol.py                  # lint src/ + registry check
  tools/lint_protocol.py --fixtures DIR   # fixture mode (see tests/)

Exit status: 0 clean, 1 violations, 2 usage/setup error.
"""

import os
import re
import sys

REPO = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
SHIM = os.path.join("src", "common", "thread_annotations.h")
REGISTRY = os.path.join("docs", "static_analysis.md")

# How many lines above a flagged statement a waiver comment still covers
# (comments may span a few lines before the statement they justify).
WAIVER_WINDOW = 6

BARE_WAIT = re.compile(r"\.wait\s*\(")
RAW_MUTEX = re.compile(r"\bstd::(timed_|recursive_|shared_)?mutex\b")
MUTEX_MEMBER = re.compile(r"^\s*(?:mutable\s+)?(?:chc::)?Mutex\s+(\w+)\s*[;{]")
RELAXED_LOAD = re.compile(r"\.load\s*\(\s*std::memory_order_relaxed\s*\)")
CONTROL_FLOW = re.compile(r"\b(if|while|for)\s*\(")
LOCKED_FN = re.compile(r"\b(\w+_locked)\s*\(")
ANNOTATION_USE = re.compile(
    r"\b(GUARDED_BY|PT_GUARDED_BY|REQUIRES|EXCLUDES|ACQUIRE|RELEASE|"
    r"TRY_ACQUIRE|RETURN_CAPABILITY)\s*\("
)
NODISCARD_ENUMS = {
    os.path.join("src", "store", "message.h"): "Status",
    os.path.join("src", "store", "backend.h"): "BackendStatus",
}


def has_waiver(lines, idx, tag):
    """True if `// <tag>: <justification>` appears on the flagged line or in
    the WAIVER_WINDOW lines above it, with a non-empty justification."""
    lo = max(0, idx - WAIVER_WINDOW)
    for line in lines[lo : idx + 1]:
        m = re.search(tag + r":\s*(\S.*)?", line)
        if m:
            if not m.group(1):
                return False  # waiver present but unjustified: still flagged
            return True
    return False


def lint_file(relpath, text, errors, fixture_mode=False):
    lines = text.splitlines()
    is_header = relpath.endswith(".h")
    shim = relpath.replace("\\", "/").endswith("common/thread_annotations.h")
    metrics = "common/metrics." in relpath.replace("\\", "/")

    def err(i, rule, msg):
        errors.append(f"{relpath}:{i + 1}: [{rule}] {msg}")

    mutex_members = []
    for i, line in enumerate(lines):
        code = line.split("//", 1)[0]

        # R1: bare condition_variable wait. wait_for / wait_until survive
        # because the regex demands the exact token `.wait(`.
        if BARE_WAIT.search(code) and not re.search(r"\.wait_(for|until)", code):
            err(i, "R1", "unbounded .wait() — use wait_for/wait_until with "
                         "a predicate (a dead producer must not wedge you)")

        # R2a: raw std::mutex anywhere but the shim.
        if not shim and RAW_MUTEX.search(code):
            err(i, "R2", "raw std::mutex — use chc::Mutex from "
                         "common/thread_annotations.h so the capability "
                         "attributes apply")

        # R2b: collect annotated-mutex members for the per-file reference
        # check after the scan.
        m = MUTEX_MEMBER.match(code)
        if m and not shim:
            mutex_members.append((i, m.group(1)))

        # R4: relaxed load in a control-flow condition.
        if (not metrics and RELAXED_LOAD.search(code)
                and CONTROL_FLOW.search(code)
                and not has_waiver(lines, i, "relaxed-ok")):
            err(i, "R4", "memory_order_relaxed load feeding control flow — "
                         "upgrade the ordering or add a justified "
                         "`// relaxed-ok:` waiver")

        # R5: *_locked functions must be declared REQUIRES. Applies to
        # declarations (headers, or unqualified file-local functions);
        # out-of-line `Class::foo_locked` definitions inherit the
        # declaration's attributes, and call sites are exempt.
        m = LOCKED_FN.search(code)
        if m and "::" not in code.split(m.group(1))[0][-24:]:
            stmt = code
            j = i
            while j + 1 < len(lines) and "{" not in stmt and ";" not in stmt:
                j += 1
                stmt += " " + lines[j].split("//", 1)[0]
            looks_like_decl = (
                is_header
                and not re.match(r"\s*(return\b|//)", line)
                and "=" not in code.split(m.group(1))[0]
                and re.search(
                    r"[\w>&*\]]\s+\*?&?" + re.escape(m.group(1)) + r"\s*\(",
                    code))
            if looks_like_decl and "REQUIRES" not in stmt:
                err(i, "R5", f"{m.group(1)}() is named *_locked but its "
                             "declaration has no REQUIRES(...) annotation")

        # R6: waiver macro needs an in-place justification.
        if not shim and "NO_THREAD_SAFETY_ANALYSIS" in code:
            if not any("//" in l for l in lines[max(0, i - 2) : i + 1]):
                err(i, "R6", "NO_THREAD_SAFETY_ANALYSIS without a justifying "
                             "comment at the use site")

    # R2b: every chc::Mutex member must be referenced by an annotation
    # somewhere in the same file (or waived).
    for i, name in mutex_members:
        referenced = any(
            ANNOTATION_USE.search(l) and name in l for l in lines)
        if not referenced and not has_waiver(lines, i, "mutex-ok"):
            err(i, "R2", f"Mutex member {name} has no GUARDED_BY/REQUIRES/"
                         "EXCLUDES reference in this file — annotate what it "
                         "guards or add a justified `// mutex-ok:` waiver")

    return bool(mutex_members)


def collect(root, subdirs, exts=(".h", ".cc")):
    out = []
    for sub in subdirs:
        for dirpath, _, names in os.walk(os.path.join(root, sub)):
            for n in sorted(names):
                if n.endswith(exts):
                    out.append(os.path.relpath(os.path.join(dirpath, n), root))
    return sorted(out)


def lint_tree(root):
    errors = []
    files = collect(root, ["src"])
    if not files:
        print(f"lint_protocol: no sources under {root}/src", file=sys.stderr)
        return 2

    waiver_files = set()
    for rel in files:
        with open(os.path.join(root, rel), encoding="utf-8") as f:
            text = f.read()
        lint_file(rel, text, errors)
        if not rel.replace("\\", "/").endswith("common/thread_annotations.h"):
            if ("relaxed-ok" in text or "mutex-ok" in text
                    or "NO_THREAD_SAFETY_ANALYSIS" in text):
                waiver_files.add(rel)

    # R3: the [[nodiscard]] markers stay put.
    for rel, enum in NODISCARD_ENUMS.items():
        path = os.path.join(root, rel)
        if not os.path.exists(path):
            errors.append(f"{rel}:1: [R3] file missing (nodiscard check)")
            continue
        with open(path, encoding="utf-8") as f:
            text = f.read()
        if not re.search(r"enum\s+class\s+\[\[nodiscard\]\]\s+" + enum, text):
            errors.append(f"{rel}:1: [R3] enum {enum} is no longer "
                          "[[nodiscard]] — silent Status discards would "
                          "compile again")

    # R7: the waiver registry enumerates every waiver-carrying file.
    reg_path = os.path.join(root, REGISTRY)
    if os.path.exists(reg_path):
        with open(reg_path, encoding="utf-8") as f:
            registry = f.read()
        for rel in sorted(waiver_files):
            if rel.replace("\\", "/") not in registry:
                errors.append(
                    f"{rel}:1: [R7] file carries a concurrency waiver but is "
                    f"not listed in {REGISTRY}")
    else:
        errors.append(f"{REGISTRY}:1: [R7] waiver registry missing")

    for e in errors:
        print(e)
    print(f"lint_protocol: {len(files)} files, {len(errors)} violation(s)")
    return 1 if errors else 0


def lint_fixtures(fixture_dir):
    """Fixture mode: files named bad_*.cc/.h must produce >=1 violation
    mentioning the rule id embedded in their name (bad_r1_*.cc -> R1);
    files named good_*.cc/.h must be clean. Registry (R7) is skipped —
    fixtures are not part of the tree."""
    failures = []
    names = sorted(
        n for n in os.listdir(fixture_dir) if n.endswith((".cc", ".h")))
    if not names:
        print(f"lint_protocol: no fixtures in {fixture_dir}", file=sys.stderr)
        return 2
    for n in names:
        with open(os.path.join(fixture_dir, n), encoding="utf-8") as f:
            text = f.read()
        errors = []
        lint_file(n, text, errors)
        if n.startswith("bad_"):
            want = n.split("_")[1].upper()  # bad_r1_... -> R1
            if not any(f"[{want}]" in e for e in errors):
                failures.append(
                    f"{n}: expected a [{want}] violation, got "
                    f"{[e.split('] ')[0] + ']' for e in errors] or 'none'}")
        elif n.startswith("good_"):
            if errors:
                failures.append(f"{n}: expected clean, got:\n  " +
                                "\n  ".join(errors))
    for f in failures:
        print(f)
    print(f"lint_protocol: {len(names)} fixtures, {len(failures)} failure(s)")
    return 1 if failures else 0


def main(argv):
    if len(argv) >= 2 and argv[1] == "--fixtures":
        if len(argv) != 3:
            print(__doc__, file=sys.stderr)
            return 2
        return lint_fixtures(argv[2])
    if len(argv) == 1:
        return lint_tree(REPO)
    print(__doc__, file=sys.stderr)
    return 2


if __name__ == "__main__":
    sys.exit(main(sys.argv))
