#!/usr/bin/env python3
"""Line-coverage floor over selected source trees, from raw gcov data.

Deliberately lcov-free: gcc's own `gcov --json-format --stdout` is the
only tool invoked, so the gate runs anywhere the compiler does. Point it
at a build tree configured with -DENABLE_COVERAGE=ON after the test
suites have run:

    python3 tools/check_coverage.py build-cov \
        --min 70 --path src/store --path src/control

For every .gcda the build produced, the matching gcov JSON is parsed and
covered/executable lines are unioned per source file (a line counts as
covered if ANY object that compiled it executed it — headers compiled
into many TUs would otherwise be under-counted). Files outside the
--path prefixes are ignored. Exit 1 if any prefix's aggregate line
coverage is below --min.
"""

import argparse
import collections
import json
import os
import subprocess
import sys


def gcov_json(gcda, build_dir):
    """Run gcov on one .gcda and yield its parsed file records."""
    try:
        # gcov runs with the build tree as cwd (so it finds the .gcno next
        # to the .gcda); the gcda path itself must therefore be absolute.
        out = subprocess.run(
            ["gcov", "--json-format", "--stdout", os.path.abspath(gcda)],
            cwd=build_dir,
            capture_output=True,
            text=True,
            timeout=120,
        )
    except (OSError, subprocess.TimeoutExpired) as e:
        print(f"warning: gcov failed on {gcda}: {e}", file=sys.stderr)
        return
    # One JSON document per line (gcov emits one per .gcno processed).
    for line in out.stdout.splitlines():
        line = line.strip()
        if not line.startswith("{"):
            continue
        try:
            yield json.loads(line)
        except json.JSONDecodeError:
            continue


def main():
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("build_dir", help="build tree with .gcda files")
    ap.add_argument("--min", type=float, required=True,
                    help="minimum aggregate line coverage percent per --path")
    ap.add_argument("--path", action="append", required=True,
                    help="repo-relative source prefix to gate (repeatable)")
    ap.add_argument("--root", default=os.getcwd(),
                    help="repo root the prefixes are relative to")
    args = ap.parse_args()

    root = os.path.abspath(args.root)
    gcdas = []
    for dirpath, _, files in os.walk(args.build_dir):
        gcdas.extend(os.path.join(dirpath, f) for f in files
                     if f.endswith(".gcda"))
    if not gcdas:
        print(f"error: no .gcda under {args.build_dir} — was the build "
              "configured with -DENABLE_COVERAGE=ON and were tests run?",
              file=sys.stderr)
        return 1

    # file -> line -> max execution count across all objects.
    lines = collections.defaultdict(dict)
    for gcda in gcdas:
        for doc in gcov_json(gcda, args.build_dir):
            for frec in doc.get("files", []):
                path = frec.get("file", "")
                if os.path.isabs(path):
                    try:
                        path = os.path.relpath(path, root)
                    except ValueError:
                        continue
                if path.startswith(".."):
                    continue
                per_file = lines[path]
                for lrec in frec.get("lines", []):
                    no = lrec.get("line_number")
                    count = lrec.get("count", 0)
                    if no is None:
                        continue
                    per_file[no] = max(per_file.get(no, 0), count)

    failed = False
    for prefix in args.path:
        norm = prefix.rstrip("/") + "/"
        execable = covered = nfiles = 0
        for path, per_file in sorted(lines.items()):
            if not path.startswith(norm):
                continue
            nfiles += 1
            execable += len(per_file)
            covered += sum(1 for c in per_file.values() if c > 0)
        pct = 100.0 * covered / execable if execable else 0.0
        status = "ok" if pct >= args.min else "BELOW FLOOR"
        print(f"{prefix}: {pct:.1f}% line coverage "
              f"({covered}/{execable} lines, {nfiles} files) "
              f"[floor {args.min:.1f}%] {status}")
        if pct < args.min:
            failed = True
        if nfiles == 0:
            print(f"error: no instrumented files under {prefix}",
                  file=sys.stderr)
            failed = True
    return 1 if failed else 0


if __name__ == "__main__":
    sys.exit(main())
