#!/usr/bin/env python3
"""Markdown link checker for the repo's documentation tier.

Scans the given markdown files/directories for inline links and validates:
  - relative links resolve to an existing file or directory (anchors and
    query strings stripped; paths resolve relative to the containing file);
  - intra-document anchors ("#heading") match a heading in the same file,
    using GitHub's slug rules (lowercase, spaces -> dashes, punctuation
    dropped).
External (http/https/mailto) links are reported but not fetched — CI must
not flake on someone else's server.

Exit code 0 when every internal link resolves, 1 otherwise.
"""

import os
import re
import sys

LINK_RE = re.compile(r"\[([^\]]*)\]\(([^)\s]+)(?:\s+\"[^\"]*\")?\)")
HEADING_RE = re.compile(r"^#{1,6}\s+(.*)$", re.MULTILINE)
CODE_FENCE_RE = re.compile(r"```.*?```", re.DOTALL)


def github_slug(heading: str) -> str:
    slug = heading.strip().lower()
    slug = re.sub(r"[^\w\- ]", "", slug)
    slug = slug.replace(" ", "-")
    return slug


def collect_md_files(args):
    files = []
    for arg in args:
        if os.path.isdir(arg):
            for root, _dirs, names in os.walk(arg):
                files.extend(
                    os.path.join(root, n) for n in names if n.endswith(".md"))
        elif arg.endswith(".md"):
            files.append(arg)
    return sorted(set(files))


def anchors_of(path):
    with open(path, encoding="utf-8") as f:
        text = CODE_FENCE_RE.sub("", f.read())
    return {github_slug(h) for h in HEADING_RE.findall(text)}


def main(argv):
    files = collect_md_files(argv[1:] or ["README.md", "docs"])
    errors = []
    external = 0
    checked = 0
    for md in files:
        with open(md, encoding="utf-8") as f:
            text = CODE_FENCE_RE.sub("", f.read())
        base = os.path.dirname(md) or "."
        for label, target in LINK_RE.findall(text):
            checked += 1
            if target.startswith(("http://", "https://", "mailto:")):
                external += 1
                continue
            path_part, _, anchor = target.partition("#")
            if not path_part:  # intra-document anchor
                if anchor and github_slug(anchor) not in anchors_of(md):
                    errors.append(f"{md}: broken anchor [{label}](#{anchor})")
                continue
            resolved = os.path.normpath(os.path.join(base, path_part))
            if not os.path.exists(resolved):
                errors.append(f"{md}: broken link [{label}]({target})")
                continue
            if anchor and resolved.endswith(".md"):
                if github_slug(anchor) not in anchors_of(resolved):
                    errors.append(
                        f"{md}: broken anchor [{label}]({target})")
    for e in errors:
        print(e)
    print(f"checked {checked} links in {len(files)} files "
          f"({external} external skipped), {len(errors)} broken")
    return 1 if errors else 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
